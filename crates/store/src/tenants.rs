//! Tenant-scoped storage roots for multi-plant deployments.
//!
//! A single `hierod` process can host many plants ("tenants"). Each
//! tenant owns an isolated slice of the storage tree so that one
//! plant's corrupt WAL or torn segment can never poison another
//! plant's recovery:
//!
//! ```text
//! <root>/
//!   <plant-id>/
//!     shard-0/   wal + segments for shard 0
//!     shard-1/   ...
//! ```
//!
//! [`StorageFactory`] abstracts that layout: [`DiskFactory`] maps it
//! onto real directories, [`MemFactory`] onto deterministic
//! [`MemStorage`] instances for fault-injection tests. Discovery is
//! intentionally shallow — a factory only enumerates tenant ids and
//! shard indices; everything below a shard root stays behind the flat
//! [`Storage`] namespace the WAL and segment code already use.

use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::faultfs::MemStorage;
use crate::storage::{DiskStorage, Storage};

/// Maximum accepted tenant-id length in bytes.
pub const MAX_TENANT_ID_LEN: usize = 64;

/// Returns `true` when `id` is a well-formed tenant id.
///
/// Tenant ids become directory names — and since the network front-end
/// they arrive over the wire from untrusted clients — so the grammar is
/// deliberately strict and pinned by proptest
/// (`tests/tenant_id_props.rs`):
///
/// * 1–[`MAX_TENANT_ID_LEN`] bytes, all of `[A-Za-z0-9._-]` — no path
///   separators, no NUL, nothing the filesystem could interpret;
/// * split on `.`, every segment is non-empty — this rejects leading
///   dots (hidden directories), trailing dots (stripped on some
///   filesystems), bare `.`/`..`, and any embedded `..` traversal
///   shape like `a..b`;
/// * the first byte is not `-` (no option-like names).
///
/// `shard-<k>` never collides because tenants live one level above
/// shard directories.
pub fn valid_tenant_id(id: &str) -> bool {
    let bytes = id.as_bytes();
    if bytes.is_empty() || bytes.len() > MAX_TENANT_ID_LEN {
        return false;
    }
    if bytes.first() == Some(&b'-') {
        return false;
    }
    if !bytes
        .iter()
        .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
    {
        return false;
    }
    // Every dot-separated segment must be non-empty: catches ".", "..",
    // ".hidden", "trailing.", and "a..b" in one rule.
    id.split('.').all(|segment| !segment.is_empty())
}

fn invalid_tenant(id: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("invalid tenant id {id:?}"),
    )
}

/// Opens per-tenant, per-shard [`Storage`] roots.
///
/// Implementations must keep tenants fully disjoint: nothing written
/// through one tenant's storage may be visible through another's.
pub trait StorageFactory {
    /// The storage implementation handed to each shard.
    type Storage: Storage;

    /// Opens (creating if absent) the storage root of one tenant shard.
    ///
    /// Fails with [`io::ErrorKind::InvalidInput`] for malformed tenant
    /// ids (see [`valid_tenant_id`]).
    fn open_shard(&self, tenant: &str, shard: usize) -> io::Result<Self::Storage>;

    /// Lists the tenant ids that already have storage, sorted.
    fn list_tenants(&self) -> io::Result<Vec<String>>;

    /// Number of shards an existing tenant was laid out with.
    ///
    /// Returns `0` for an unknown tenant. The count is derived from
    /// the highest `shard-<k>` root present, so a tenant created with
    /// `n` shards reports `n` even if some shards never wrote a byte.
    fn shard_count(&self, tenant: &str) -> io::Result<usize>;
}

fn shard_dir_index(name: &str) -> Option<usize> {
    name.strip_prefix("shard-")?.parse::<usize>().ok()
}

/// Directory-tree [`StorageFactory`]: `<root>/<tenant>/shard-<k>/`.
pub struct DiskFactory {
    root: PathBuf,
}

impl DiskFactory {
    /// Opens a factory rooted at `root`, creating the directory if
    /// needed.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DiskFactory { root })
    }

    /// The root directory all tenants live under.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }
}

impl StorageFactory for DiskFactory {
    type Storage = DiskStorage;

    fn open_shard(&self, tenant: &str, shard: usize) -> io::Result<DiskStorage> {
        if !valid_tenant_id(tenant) {
            return Err(invalid_tenant(tenant));
        }
        DiskStorage::open(self.root.join(tenant).join(format!("shard-{shard}")))
    }

    fn list_tenants(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            if let Some(name) = entry.file_name().to_str() {
                if valid_tenant_id(name) {
                    out.push(name.to_string());
                }
            }
        }
        out.sort();
        Ok(out)
    }

    fn shard_count(&self, tenant: &str) -> io::Result<usize> {
        if !valid_tenant_id(tenant) {
            return Err(invalid_tenant(tenant));
        }
        let dir = self.root.join(tenant);
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(err) => return Err(err),
        };
        let mut count = 0usize;
        for entry in entries {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            if let Some(k) = entry.file_name().to_str().and_then(shard_dir_index) {
                count = count.max(k + 1);
            }
        }
        Ok(count)
    }
}

/// Deterministic in-memory [`StorageFactory`] over [`MemStorage`].
///
/// Every `(tenant, shard)` pair maps to one shared [`MemStorage`]
/// instance: repeated [`StorageFactory::open_shard`] calls return
/// clones backed by the same bytes, so a test can keep a handle (via
/// [`MemFactory::storage`]) and pull fault levers — write budgets,
/// torn tails, bit flips — on one tenant while others keep running.
#[derive(Default)]
pub struct MemFactory {
    shards: Mutex<BTreeMap<(String, usize), MemStorage>>,
}

impl MemFactory {
    /// Creates an empty factory.
    pub fn new() -> Self {
        MemFactory::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<(String, usize), MemStorage>> {
        self.shards.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a handle to an already-opened shard storage, if any.
    pub fn storage(&self, tenant: &str, shard: usize) -> Option<MemStorage> {
        self.lock().get(&(tenant.to_string(), shard)).cloned()
    }

    /// Snapshots the whole tree as a post-crash factory.
    ///
    /// Each shard storage is replaced by its
    /// [`MemStorage::crash_image`]; `keep_unsynced` controls whether
    /// un-fsynced appends survive into the image.
    pub fn crash_image(&self, keep_unsynced: bool) -> MemFactory {
        let shards = self
            .lock()
            .iter()
            .map(|(key, storage)| (key.clone(), storage.crash_image(keep_unsynced)))
            .collect();
        MemFactory {
            shards: Mutex::new(shards),
        }
    }
}

impl StorageFactory for MemFactory {
    type Storage = MemStorage;

    fn open_shard(&self, tenant: &str, shard: usize) -> io::Result<MemStorage> {
        if !valid_tenant_id(tenant) {
            return Err(invalid_tenant(tenant));
        }
        Ok(self
            .lock()
            .entry((tenant.to_string(), shard))
            .or_default()
            .clone())
    }

    fn list_tenants(&self) -> io::Result<Vec<String>> {
        let mut out: Vec<String> = Vec::new();
        for (tenant, _) in self.lock().keys() {
            if out.last().map(String::as_str) != Some(tenant.as_str()) {
                out.push(tenant.clone());
            }
        }
        Ok(out)
    }

    fn shard_count(&self, tenant: &str) -> io::Result<usize> {
        if !valid_tenant_id(tenant) {
            return Err(invalid_tenant(tenant));
        }
        Ok(self
            .lock()
            .keys()
            .filter(|(t, _)| t == tenant)
            .map(|(_, k)| k + 1)
            .max()
            .unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_id_grammar() {
        assert!(valid_tenant_id("plant-a"));
        assert!(valid_tenant_id("Plant_01.eu"));
        assert!(!valid_tenant_id(""));
        assert!(!valid_tenant_id(".hidden"));
        assert!(!valid_tenant_id(".."));
        assert!(!valid_tenant_id("-flag"));
        assert!(!valid_tenant_id("a/b"));
        assert!(!valid_tenant_id("a b"));
        assert!(!valid_tenant_id(&"x".repeat(MAX_TENANT_ID_LEN + 1)));
    }

    #[test]
    fn mem_factory_shares_bytes_per_shard_and_isolates_tenants() {
        let factory = MemFactory::new();
        let a0 = factory.open_shard("plant-a", 0).unwrap();
        let mut f = a0.create("wal-000001").unwrap();
        f.append(b"hello").unwrap();
        f.sync().unwrap();
        drop(f);

        // Re-opening the same shard sees the same bytes.
        let again = factory.open_shard("plant-a", 0).unwrap();
        assert_eq!(again.read("wal-000001").unwrap(), b"hello");

        // A different tenant (or shard) sees an empty namespace.
        let b0 = factory.open_shard("plant-b", 0).unwrap();
        assert!(b0.list().unwrap().is_empty());
        let a1 = factory.open_shard("plant-a", 1).unwrap();
        assert!(a1.list().unwrap().is_empty());

        assert_eq!(factory.list_tenants().unwrap(), vec!["plant-a", "plant-b"]);
        assert_eq!(factory.shard_count("plant-a").unwrap(), 2);
        assert_eq!(factory.shard_count("plant-b").unwrap(), 1);
        assert_eq!(factory.shard_count("plant-c").unwrap(), 0);
    }

    #[test]
    fn mem_factory_crash_image_is_per_tenant() {
        let factory = MemFactory::new();
        let a0 = factory.open_shard("a", 0).unwrap();
        let b0 = factory.open_shard("b", 0).unwrap();
        for (storage, payload) in [(&a0, b"aaaa".as_slice()), (&b0, b"bbbb".as_slice())] {
            let mut f = storage.create("wal-000001").unwrap();
            f.append(payload).unwrap();
            f.sync().unwrap();
        }
        // Unsynced tail only on tenant a.
        let mut f = a0.open_append("wal-000001").unwrap();
        f.append(b"tail").unwrap();
        drop(f);

        let image = factory.crash_image(false);
        assert_eq!(
            image
                .open_shard("a", 0)
                .unwrap()
                .read("wal-000001")
                .unwrap(),
            b"aaaa"
        );
        assert_eq!(
            image
                .open_shard("b", 0)
                .unwrap()
                .read("wal-000001")
                .unwrap(),
            b"bbbb"
        );
        // Mutating the image never leaks back into the live factory.
        image
            .open_shard("a", 0)
            .unwrap()
            .remove("wal-000001")
            .unwrap();
        assert!(a0.read("wal-000001").is_ok());
    }

    #[test]
    fn disk_factory_layout_roundtrip() {
        let root = std::env::temp_dir().join(format!(
            "hierod-tenants-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let factory = DiskFactory::open(&root).unwrap();
        assert!(factory.list_tenants().unwrap().is_empty());

        let s = factory.open_shard("plant-a", 1).unwrap();
        let mut f = s.create("seg-000001").unwrap();
        f.append(b"data").unwrap();
        f.sync().unwrap();
        drop(f);
        factory.open_shard("plant-b", 0).unwrap();

        assert!(root.join("plant-a").join("shard-1").is_dir());
        assert_eq!(factory.list_tenants().unwrap(), vec!["plant-a", "plant-b"]);
        assert_eq!(factory.shard_count("plant-a").unwrap(), 2);
        assert_eq!(factory.shard_count("plant-b").unwrap(), 1);
        assert!(factory.open_shard("../evil", 0).is_err());
        assert!(factory.shard_count("nope").unwrap() == 0);

        let _ = std::fs::remove_dir_all(&root);
    }
}
