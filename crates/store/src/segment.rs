//! Immutable columnar segment files sealed from the WAL on rotation.
//!
//! Layout:
//!
//! ```text
//! [magic "HSEG1\n"]
//! per chunk:  [ts column: varint ts0, varint deltas][u32 crc]
//!             [value column: raw LE f64 × count]    [u32 crc]
//! [footer: lane defs, control records, chunk index]
//! [u32 footer_len][u32 crc32(footer)][tail magic "HSEGF\n"]
//! ```
//!
//! In the original (`Raw`) column encoding, timestamps are delta-encoded
//! varints (strictly increasing within a chunk — the stream watermark
//! guarantees it, the encoder enforces it) and values are raw IEEE-754
//! bits so NaN payloads round-trip exactly. The history tier's compacted
//! segments instead negotiate [`ColumnEncoding::Gorilla`] per chunk
//! (XOR floats + double-delta timestamps, [`crate::gorilla`]) through an
//! extension section at the end of the footer; files written before the
//! extension existed have no section and decode as `Raw`, so the two
//! formats cross-decode. The footer indexes every chunk by lane with byte
//! offsets, sample count, min/max timestamps, and the per-lane
//! late/duplicate counters frozen at seal time. Unlike the WAL, a segment
//! is all-or-nothing: it was written and fsynced before its WAL was
//! deleted, so *any* checksum or structure failure is a hard error —
//! there is no valid prefix to salvage.
//!
//! The decoder materialises columns straight into `Arc<[u64]>` /
//! `Arc<[f64]>` so `hierod-timeseries` views can share them zero-copy.
//! Range scans use the split API — [`decode_index`] verifies only the
//! framing and footer, then [`decode_chunk`] checksums and decodes
//! exactly the chunks that survive min/max pruning.

use std::fmt;
use std::sync::Arc;

use crate::codec;
use crate::crc::crc32;
use crate::gorilla;

/// File magic for segment files.
pub const SEG_MAGIC: &[u8; 6] = b"HSEG1\n";
/// Trailing magic; its presence proves the file was written to the end.
pub const SEG_TAIL: &[u8; 6] = b"HSEGF\n";

/// Why a segment failed to decode. Segments are immutable and fsynced
/// before their WAL is dropped, so every variant is unrecoverable
/// corruption of that file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentError {
    /// The file is shorter than its fixed framing.
    Truncated,
    /// Head or tail magic is wrong.
    BadMagic,
    /// A column or the footer does not match its checksum.
    ChecksumMismatch(&'static str),
    /// Structure is inconsistent (bad offsets, counts, varints).
    Malformed(&'static str),
    /// A timestamp column is not strictly increasing (also returned by
    /// the encoder when handed out-of-order input).
    NonMonotonic {
        /// The lane whose column is out of order.
        lane: u32,
    },
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Truncated => write!(f, "segment truncated"),
            SegmentError::BadMagic => write!(f, "segment magic mismatch"),
            SegmentError::ChecksumMismatch(what) => {
                write!(f, "segment checksum mismatch in {what}")
            }
            SegmentError::Malformed(what) => write!(f, "segment malformed: {what}"),
            SegmentError::NonMonotonic { lane } => {
                write!(f, "segment lane {lane}: timestamps not strictly increasing")
            }
        }
    }
}

impl std::error::Error for SegmentError {}

impl From<SegmentError> for std::io::Error {
    fn from(e: SegmentError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// How a chunk's columns are encoded on disk, negotiated through the
/// footer extension section. Files without the section (everything
/// written before the history tier) are `Raw` throughout.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ColumnEncoding {
    /// Varint-delta timestamps, raw little-endian IEEE-754 values.
    #[default]
    Raw = 0,
    /// Double-delta timestamps, XOR floats ([`crate::gorilla`]).
    Gorilla = 1,
}

impl ColumnEncoding {
    fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(ColumnEncoding::Raw),
            1 => Some(ColumnEncoding::Gorilla),
            _ => None,
        }
    }
}

/// Footer extension tags (`varint tag` after the chunk index; unknown
/// tags are a hard decode error, so they version the format).
const EXT_ENCODINGS: u64 = 1;
const EXT_EXTRA: u64 = 2;

/// A lane declaration carried into the segment footer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneDef {
    /// Store-local lane number.
    pub lane: u32,
    /// Opaque lane metadata (serialised `LaneId`).
    pub meta: Vec<u8>,
}

/// A control event carried into the segment footer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlRecord {
    /// Writer-assigned, strictly increasing sequence number.
    pub seq: u64,
    /// Opaque event body.
    pub payload: Vec<u8>,
}

/// One lane's sealed samples, plus the counters frozen at seal time.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentChunk {
    /// Lane declared in the footer's lane defs.
    pub lane: u32,
    /// Sequence number of the control event that opened this lane
    /// interval; recovery applies the chunk right after that control.
    pub after_control_seq: u64,
    /// Strictly increasing sample timestamps.
    pub timestamps: Vec<u64>,
    /// Sample values, same length as `timestamps`.
    pub values: Vec<f64>,
    /// Absolute late-drop counter for the lane at seal time.
    pub late_dropped: u64,
    /// Absolute duplicate-drop counter for the lane at seal time.
    pub duplicates_dropped: u64,
}

/// Everything that goes into one segment file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SegmentDraft {
    /// Lane declarations (superset of the lanes chunks reference).
    pub lane_defs: Vec<LaneDef>,
    /// Control events sealed into this segment, in sequence order.
    pub controls: Vec<ControlRecord>,
    /// Sealed sample chunks.
    pub chunks: Vec<SegmentChunk>,
    /// Opaque application metadata carried in the footer extension
    /// (the history tier stores the compaction level here). Empty for
    /// rotation segments — and an empty `extra` is not written at all,
    /// keeping raw drafts byte-identical to the pre-extension format.
    pub extra: Vec<u8>,
}

/// One decoded chunk with shareable column storage.
#[derive(Debug, Clone)]
pub struct DecodedChunk {
    /// Lane number.
    pub lane: u32,
    /// Control sequence this chunk follows.
    pub after_control_seq: u64,
    /// Timestamp column, ready for zero-copy `TimeSeries` adoption.
    pub timestamps: Arc<[u64]>,
    /// Value column, ready for zero-copy `TimeSeries` adoption.
    pub values: Arc<[f64]>,
    /// Absolute late-drop counter at seal time.
    pub late_dropped: u64,
    /// Absolute duplicate-drop counter at seal time.
    pub duplicates_dropped: u64,
}

/// A fully verified, decoded segment.
#[derive(Debug, Clone, Default)]
pub struct SegmentData {
    /// Lane declarations.
    pub lane_defs: Vec<LaneDef>,
    /// Control events in sequence order.
    pub controls: Vec<ControlRecord>,
    /// Decoded chunks in file order.
    pub chunks: Vec<DecodedChunk>,
    /// Opaque application metadata from the footer extension.
    pub extra: Vec<u8>,
}

/// One chunk's footer metadata: everything a scan needs to decide
/// whether the chunk is worth decoding, without touching its columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Lane declared in the footer's lane defs.
    pub lane: u32,
    /// Control sequence this chunk follows on replay.
    pub after_control_seq: u64,
    /// Sample count.
    pub count: u64,
    /// Smallest timestamp in the chunk (0 when empty).
    pub min_ts: u64,
    /// Largest timestamp in the chunk (0 when empty).
    pub max_ts: u64,
    /// Absolute late-drop counter at seal time.
    pub late_dropped: u64,
    /// Absolute duplicate-drop counter at seal time.
    pub duplicates_dropped: u64,
    /// On-disk column encoding.
    pub encoding: ColumnEncoding,
    // Byte ranges stay module-private: only `decode_chunk` dereferences
    // them, after re-validating against the footer boundary.
    ts_off: u64,
    ts_len: u64,
    val_off: u64,
    val_len: u64,
}

/// A verified footer: framing and footer checksum have been checked,
/// but no column has been read. [`decode_chunk`] completes the work
/// per chunk, letting range scans skip pruned chunks entirely.
#[derive(Debug, Clone)]
pub struct SegmentIndex {
    /// Lane declarations.
    pub lane_defs: Vec<LaneDef>,
    /// Control events in sequence order.
    pub controls: Vec<ControlRecord>,
    /// Per-chunk metadata in file order.
    pub chunks: Vec<ChunkMeta>,
    /// Opaque application metadata from the footer extension.
    pub extra: Vec<u8>,
}

impl SegmentDraft {
    /// Serialises the draft into a complete segment file image with the
    /// original raw column encoding. With an empty [`extra`] this is
    /// byte-identical to the pre-extension format, which the committed
    /// golden segment pins.
    ///
    /// [`extra`]: SegmentDraft::extra
    ///
    /// # Errors
    /// [`SegmentError::NonMonotonic`] if a chunk's timestamps are not
    /// strictly increasing, [`SegmentError::Malformed`] if a chunk's
    /// column lengths disagree.
    pub fn encode(&self) -> Result<Vec<u8>, SegmentError> {
        self.encode_as(ColumnEncoding::Raw)
    }

    /// Serialises the draft with the given column encoding on every
    /// chunk. Non-raw encodings (and a non-empty [`extra`]) are recorded
    /// in footer extension sections after the chunk index; decoders
    /// without extension support reject such files outright (trailing
    /// footer bytes) rather than misreading the columns.
    ///
    /// [`extra`]: SegmentDraft::extra
    ///
    /// # Errors
    /// As [`encode`](SegmentDraft::encode).
    pub fn encode_as(&self, encoding: ColumnEncoding) -> Result<Vec<u8>, SegmentError> {
        let mut out = Vec::with_capacity(64 + self.chunks.len() * 64);
        out.extend_from_slice(SEG_MAGIC);
        let mut entries = Vec::with_capacity(self.chunks.len());
        for chunk in &self.chunks {
            if chunk.timestamps.len() != chunk.values.len() {
                return Err(SegmentError::Malformed("column length mismatch"));
            }
            let ts_col = match encoding {
                ColumnEncoding::Raw => {
                    // First value absolute, then strict deltas.
                    let mut col = Vec::with_capacity(chunk.timestamps.len() * 2);
                    let mut prev: Option<u64> = None;
                    for &t in &chunk.timestamps {
                        match prev {
                            None => codec::put_varint(&mut col, t),
                            Some(p) => {
                                if t <= p {
                                    return Err(SegmentError::NonMonotonic { lane: chunk.lane });
                                }
                                codec::put_varint(&mut col, t - p);
                            }
                        }
                        prev = Some(t);
                    }
                    col
                }
                ColumnEncoding::Gorilla => gorilla::compress_timestamps(&chunk.timestamps)
                    .ok_or(SegmentError::NonMonotonic { lane: chunk.lane })?,
            };
            let ts_off = out.len() as u64;
            out.extend_from_slice(&ts_col);
            codec::put_u32(&mut out, crc32(&ts_col));

            let val_col = match encoding {
                ColumnEncoding::Raw => {
                    let mut col = Vec::with_capacity(chunk.values.len() * 8);
                    for &v in &chunk.values {
                        codec::put_f64(&mut col, v);
                    }
                    col
                }
                ColumnEncoding::Gorilla => gorilla::compress_values(&chunk.values),
            };
            let val_off = out.len() as u64;
            out.extend_from_slice(&val_col);
            codec::put_u32(&mut out, crc32(&val_col));

            let min_ts = chunk.timestamps.first().copied().unwrap_or(0);
            let max_ts = chunk.timestamps.last().copied().unwrap_or(0);
            entries.push(ChunkMeta {
                lane: chunk.lane,
                after_control_seq: chunk.after_control_seq,
                count: chunk.timestamps.len() as u64,
                min_ts,
                max_ts,
                late_dropped: chunk.late_dropped,
                duplicates_dropped: chunk.duplicates_dropped,
                encoding,
                ts_off,
                ts_len: ts_col.len() as u64,
                val_off,
                val_len: val_col.len() as u64,
            });
        }

        let mut footer = Vec::new();
        codec::put_varint(&mut footer, self.lane_defs.len() as u64);
        for def in &self.lane_defs {
            codec::put_varint(&mut footer, u64::from(def.lane));
            codec::put_bytes(&mut footer, &def.meta);
        }
        codec::put_varint(&mut footer, self.controls.len() as u64);
        for control in &self.controls {
            codec::put_varint(&mut footer, control.seq);
            codec::put_bytes(&mut footer, &control.payload);
        }
        codec::put_varint(&mut footer, entries.len() as u64);
        for e in &entries {
            codec::put_varint(&mut footer, u64::from(e.lane));
            codec::put_varint(&mut footer, e.after_control_seq);
            codec::put_varint(&mut footer, e.count);
            codec::put_varint(&mut footer, e.ts_off);
            codec::put_varint(&mut footer, e.ts_len);
            codec::put_varint(&mut footer, e.val_off);
            codec::put_varint(&mut footer, e.val_len);
            codec::put_varint(&mut footer, e.min_ts);
            codec::put_varint(&mut footer, e.max_ts);
            codec::put_varint(&mut footer, e.late_dropped);
            codec::put_varint(&mut footer, e.duplicates_dropped);
        }
        if encoding != ColumnEncoding::Raw {
            codec::put_varint(&mut footer, EXT_ENCODINGS);
            for e in &entries {
                codec::put_varint(&mut footer, e.encoding as u64);
            }
        }
        if !self.extra.is_empty() {
            codec::put_varint(&mut footer, EXT_EXTRA);
            codec::put_bytes(&mut footer, &self.extra);
        }

        let footer_crc = crc32(&footer);
        let footer_len = footer.len() as u32;
        out.extend_from_slice(&footer);
        codec::put_u32(&mut out, footer_len);
        codec::put_u32(&mut out, footer_crc);
        out.extend_from_slice(SEG_TAIL);
        Ok(out)
    }
}

/// Decodes and verifies the framing and footer of a segment image,
/// without reading any column. Column checksums are deferred to
/// [`decode_chunk`], so a pruned scan never pays for chunks it skips.
///
/// # Errors
/// Any framing, footer checksum, or footer structure violation.
pub fn decode_index(bytes: &[u8]) -> Result<SegmentIndex, SegmentError> {
    let fixed = SEG_MAGIC.len() + 8 + SEG_TAIL.len();
    if bytes.len() < fixed {
        return Err(SegmentError::Truncated);
    }
    if !bytes.starts_with(SEG_MAGIC) || !bytes.ends_with(SEG_TAIL) {
        return Err(SegmentError::BadMagic);
    }
    let frame_at = bytes.len() - 8 - SEG_TAIL.len();
    let mut frame = bytes.get(frame_at..).unwrap_or(&[]);
    let footer_len = codec::take_u32(&mut frame).ok_or(SegmentError::Truncated)? as usize;
    let footer_crc = codec::take_u32(&mut frame).ok_or(SegmentError::Truncated)?;
    let footer_at = frame_at
        .checked_sub(footer_len)
        .ok_or(SegmentError::Malformed("footer length exceeds file"))?;
    if footer_at < SEG_MAGIC.len() {
        return Err(SegmentError::Malformed("footer overlaps header"));
    }
    let footer = bytes
        .get(footer_at..frame_at)
        .ok_or(SegmentError::Truncated)?;
    if crc32(footer) != footer_crc {
        return Err(SegmentError::ChecksumMismatch("footer"));
    }

    let mut f = footer;
    let lane_def_count = codec::take_varint(&mut f).ok_or(SegmentError::Malformed("lane defs"))?;
    let mut lane_defs = Vec::new();
    for _ in 0..lane_def_count {
        let lane = codec::take_varint(&mut f)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or(SegmentError::Malformed("lane def id"))?;
        let meta = codec::take_bytes(&mut f)
            .ok_or(SegmentError::Malformed("lane def meta"))?
            .to_vec();
        lane_defs.push(LaneDef { lane, meta });
    }
    let control_count = codec::take_varint(&mut f).ok_or(SegmentError::Malformed("controls"))?;
    let mut controls = Vec::new();
    for _ in 0..control_count {
        let seq = codec::take_varint(&mut f).ok_or(SegmentError::Malformed("control seq"))?;
        let payload = codec::take_bytes(&mut f)
            .ok_or(SegmentError::Malformed("control payload"))?
            .to_vec();
        controls.push(ControlRecord { seq, payload });
    }
    let chunk_count = codec::take_varint(&mut f).ok_or(SegmentError::Malformed("chunk index"))?;
    let mut chunks = Vec::new();
    for _ in 0..chunk_count {
        let mut next =
            |what: &'static str| codec::take_varint(&mut f).ok_or(SegmentError::Malformed(what));
        let lane_raw = next("chunk lane")?;
        chunks.push(ChunkMeta {
            lane: u32::try_from(lane_raw).map_err(|_| SegmentError::Malformed("chunk lane"))?,
            after_control_seq: next("chunk seq")?,
            count: next("chunk count")?,
            ts_off: next("chunk ts off")?,
            ts_len: next("chunk ts len")?,
            val_off: next("chunk val off")?,
            val_len: next("chunk val len")?,
            min_ts: next("chunk min ts")?,
            max_ts: next("chunk max ts")?,
            late_dropped: next("chunk late")?,
            duplicates_dropped: next("chunk dups")?,
            encoding: ColumnEncoding::Raw,
        });
    }
    // Extension sections. A pre-extension file ends exactly here and
    // keeps the all-raw default; a post-extension decoder that meets an
    // unknown tag must reject the file — it cannot know how to read it.
    let mut extra = Vec::new();
    while !f.is_empty() {
        let tag = codec::take_varint(&mut f).ok_or(SegmentError::Malformed("extension tag"))?;
        match tag {
            EXT_ENCODINGS => {
                for chunk in &mut chunks {
                    let code = codec::take_varint(&mut f)
                        .ok_or(SegmentError::Malformed("chunk encoding"))?;
                    chunk.encoding = ColumnEncoding::from_code(code)
                        .ok_or(SegmentError::Malformed("unknown column encoding"))?;
                }
            }
            EXT_EXTRA => {
                extra = codec::take_bytes(&mut f)
                    .ok_or(SegmentError::Malformed("extra section"))?
                    .to_vec();
            }
            _ => return Err(SegmentError::Malformed("unknown footer extension")),
        }
    }

    Ok(SegmentIndex {
        lane_defs,
        controls,
        chunks,
        extra,
    })
}

/// Verifies and decodes one chunk of `bytes` against its footer entry
/// (from [`decode_index`] over the same image).
///
/// # Errors
/// Checksum or structure violations in that chunk's columns, or an
/// entry whose byte ranges fall outside the file body.
pub fn decode_chunk(bytes: &[u8], meta: &ChunkMeta) -> Result<DecodedChunk, SegmentError> {
    let fixed = 8 + SEG_TAIL.len();
    let body_end = bytes
        .len()
        .checked_sub(fixed)
        .and_then(|frame_at| {
            let mut frame = bytes.get(frame_at..)?;
            let footer_len = codec::take_u32(&mut frame)? as usize;
            frame_at.checked_sub(footer_len)
        })
        .ok_or(SegmentError::Truncated)?;

    let column = |off: u64, len: u64, what: &'static str| -> Result<&[u8], SegmentError> {
        let off = usize::try_from(off).map_err(|_| SegmentError::Malformed(what))?;
        let len = usize::try_from(len).map_err(|_| SegmentError::Malformed(what))?;
        let end = off.checked_add(len).ok_or(SegmentError::Malformed(what))?;
        // The +4 checksum trailer must also fit inside the body.
        let crc_end = end.checked_add(4).ok_or(SegmentError::Malformed(what))?;
        if off < SEG_MAGIC.len() || crc_end > body_end {
            return Err(SegmentError::Malformed(what));
        }
        let col = bytes.get(off..end).ok_or(SegmentError::Malformed(what))?;
        let mut crc_bytes = bytes
            .get(end..crc_end)
            .ok_or(SegmentError::Malformed(what))?;
        let expect = codec::take_u32(&mut crc_bytes).ok_or(SegmentError::Malformed(what))?;
        if crc32(col) != expect {
            return Err(SegmentError::ChecksumMismatch(what));
        }
        Ok(col)
    };

    let e = meta;
    let count = usize::try_from(e.count).map_err(|_| SegmentError::Malformed("count"))?;
    let ts_col = column(e.ts_off, e.ts_len, "timestamp column")?;
    let val_col = column(e.val_off, e.val_len, "value column")?;

    let timestamps = match e.encoding {
        ColumnEncoding::Raw => {
            // Each varint is at least one byte, so a valid column bounds
            // the count — reject early rather than trusting it for
            // allocation.
            if count > ts_col.len() {
                return Err(SegmentError::Malformed("count exceeds ts column"));
            }
            let mut timestamps = Vec::with_capacity(count);
            let mut rest = ts_col;
            let mut prev: Option<u64> = None;
            for _ in 0..count {
                let raw = codec::take_varint(&mut rest)
                    .ok_or(SegmentError::Malformed("ts column short"))?;
                let t = match prev {
                    None => raw,
                    Some(p) => {
                        if raw == 0 {
                            return Err(SegmentError::NonMonotonic { lane: e.lane });
                        }
                        p.checked_add(raw)
                            .ok_or(SegmentError::Malformed("ts overflow"))?
                    }
                };
                timestamps.push(t);
                prev = Some(t);
            }
            if !rest.is_empty() {
                return Err(SegmentError::Malformed("ts column trailing bytes"));
            }
            timestamps
        }
        ColumnEncoding::Gorilla => gorilla::decompress_timestamps(ts_col, count)
            .ok_or(SegmentError::Malformed("gorilla ts column"))?,
    };
    let min_ts = timestamps.first().copied().unwrap_or(0);
    let max_ts = timestamps.last().copied().unwrap_or(0);
    if min_ts != e.min_ts || max_ts != e.max_ts {
        return Err(SegmentError::Malformed("min/max timestamp mismatch"));
    }

    let values = match e.encoding {
        ColumnEncoding::Raw => {
            let val_bytes = count
                .checked_mul(8)
                .ok_or(SegmentError::Malformed("value column length"))?;
            if val_col.len() != val_bytes {
                return Err(SegmentError::Malformed("value column length"));
            }
            let mut values = Vec::with_capacity(count);
            let mut rest = val_col;
            while let Some(v) = codec::take_f64(&mut rest) {
                values.push(v);
            }
            if values.len() != count {
                return Err(SegmentError::Malformed("value column count"));
            }
            values
        }
        ColumnEncoding::Gorilla => gorilla::decompress_values(val_col, count)
            .ok_or(SegmentError::Malformed("gorilla value column"))?,
    };

    Ok(DecodedChunk {
        lane: e.lane,
        after_control_seq: e.after_control_seq,
        timestamps: timestamps.into(),
        values: values.into(),
        late_dropped: e.late_dropped,
        duplicates_dropped: e.duplicates_dropped,
    })
}

/// Decodes and fully verifies a segment file image.
///
/// # Errors
/// Any framing, checksum, or structure violation — segments have no
/// salvageable prefix.
pub fn decode(bytes: &[u8]) -> Result<SegmentData, SegmentError> {
    let index = decode_index(bytes)?;
    let mut chunks = Vec::with_capacity(index.chunks.len());
    for meta in &index.chunks {
        chunks.push(decode_chunk(bytes, meta)?);
    }
    Ok(SegmentData {
        lane_defs: index.lane_defs,
        controls: index.controls,
        chunks,
        extra: index.extra,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draft() -> SegmentDraft {
        SegmentDraft {
            lane_defs: vec![
                LaneDef {
                    lane: 0,
                    meta: b"m0/bed_temp/phase".to_vec(),
                },
                LaneDef {
                    lane: 1,
                    meta: b"m0/room_temp/env".to_vec(),
                },
                LaneDef {
                    lane: 2,
                    meta: b"m1/vibration/phase".to_vec(),
                },
            ],
            controls: vec![
                ControlRecord {
                    seq: 1,
                    payload: b"machine_up m0".to_vec(),
                },
                ControlRecord {
                    seq: 2,
                    payload: b"job_start m0 j0".to_vec(),
                },
            ],
            chunks: vec![
                SegmentChunk {
                    lane: 0,
                    after_control_seq: 2,
                    timestamps: vec![100, 101, 105, 1_000_000],
                    values: vec![219.5, f64::NAN, -0.0, 1e300],
                    late_dropped: 3,
                    duplicates_dropped: 1,
                },
                SegmentChunk {
                    lane: 1,
                    after_control_seq: 1,
                    timestamps: vec![42],
                    values: vec![21.0],
                    late_dropped: 0,
                    duplicates_dropped: 0,
                },
                SegmentChunk {
                    lane: 2,
                    after_control_seq: 2,
                    timestamps: Vec::new(),
                    values: Vec::new(),
                    late_dropped: 0,
                    duplicates_dropped: 7,
                },
            ],
            extra: Vec::new(),
        }
    }

    #[test]
    fn round_trip_including_empty_and_single_sample_chunks() {
        let d = draft();
        let image = d.encode().expect("encode");
        let data = decode(&image).expect("decode");
        assert_eq!(data.lane_defs, d.lane_defs);
        assert_eq!(data.controls, d.controls);
        assert_eq!(data.chunks.len(), d.chunks.len());
        for (got, want) in data.chunks.iter().zip(&d.chunks) {
            assert_eq!(got.lane, want.lane);
            assert_eq!(got.after_control_seq, want.after_control_seq);
            assert_eq!(got.timestamps.as_ref(), want.timestamps.as_slice());
            let bits: Vec<u64> = got.values.iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u64> = want.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, want_bits, "values must round-trip bit-exactly");
            assert_eq!(got.late_dropped, want.late_dropped);
            assert_eq!(got.duplicates_dropped, want.duplicates_dropped);
        }
    }

    #[test]
    fn empty_segment_round_trips() {
        let image = SegmentDraft::default().encode().expect("encode");
        let data = decode(&image).expect("decode");
        assert!(data.lane_defs.is_empty());
        assert!(data.controls.is_empty());
        assert!(data.chunks.is_empty());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let image = draft().encode().expect("encode");
        for byte in 0..image.len() {
            for bit in 0..8 {
                let mut bad = image.clone();
                bad[byte] ^= 1_u8 << bit;
                assert!(
                    decode(&bad).is_err(),
                    "bit flip at {byte}:{bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let image = draft().encode().expect("encode");
        for cut in 0..image.len() {
            assert!(decode(&image[..cut]).is_err(), "truncation at {cut}");
        }
    }

    #[test]
    fn gorilla_encoding_round_trips_and_shrinks_the_image() {
        let d = draft();
        let raw = d.encode().expect("raw encode");
        let packed = d
            .encode_as(ColumnEncoding::Gorilla)
            .expect("gorilla encode");
        let from_raw = decode(&raw).expect("raw decode");
        let from_packed = decode(&packed).expect("gorilla decode");
        assert_eq!(from_raw.lane_defs, from_packed.lane_defs);
        assert_eq!(from_raw.controls, from_packed.controls);
        assert_eq!(from_raw.chunks.len(), from_packed.chunks.len());
        for (a, b) in from_raw.chunks.iter().zip(&from_packed.chunks) {
            assert_eq!(a.lane, b.lane);
            assert_eq!(a.after_control_seq, b.after_control_seq);
            assert_eq!(a.timestamps, b.timestamps);
            let bits_a: Vec<u64> = a.values.iter().map(|v| v.to_bits()).collect();
            let bits_b: Vec<u64> = b.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "cross-decode must be bit-exact");
            assert_eq!(a.late_dropped, b.late_dropped);
            assert_eq!(a.duplicates_dropped, b.duplicates_dropped);
        }
    }

    #[test]
    fn extra_metadata_round_trips_and_empty_extra_is_pre_extension_format() {
        let mut d = draft();
        let before = d.encode().expect("encode");
        d.extra = b"level=2".to_vec();
        let with_extra = d.encode().expect("encode");
        assert_ne!(before, with_extra);
        assert_eq!(decode(&with_extra).expect("decode").extra, b"level=2");
        assert!(decode(&before).expect("decode").extra.is_empty());
        let index = decode_index(&with_extra).expect("index");
        assert!(index
            .chunks
            .iter()
            .all(|c| c.encoding == ColumnEncoding::Raw));
    }

    #[test]
    fn every_single_bit_flip_in_a_gorilla_image_is_detected() {
        let mut d = draft();
        d.extra = vec![2];
        let image = d.encode_as(ColumnEncoding::Gorilla).expect("encode");
        for byte in 0..image.len() {
            for bit in 0..8 {
                let mut bad = image.clone();
                bad[byte] ^= 1_u8 << bit;
                assert!(
                    decode(&bad).is_err(),
                    "bit flip at {byte}:{bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn index_prunes_without_touching_columns() {
        let d = draft();
        let image = d.encode_as(ColumnEncoding::Gorilla).expect("encode");
        let index = decode_index(&image).expect("index");
        assert_eq!(index.chunks.len(), 3);
        assert_eq!(index.chunks[0].min_ts, 100);
        assert_eq!(index.chunks[0].max_ts, 1_000_000);
        assert_eq!(index.chunks[0].count, 4);
        assert_eq!(index.chunks[0].encoding, ColumnEncoding::Gorilla);
        // Corrupt a value column byte: the index still parses (footer is
        // intact), and only the touched chunk fails to decode.
        let mut bad = image.clone();
        bad[SEG_MAGIC.len() + 2] ^= 0x40;
        let index = decode_index(&bad).expect("index survives column damage");
        assert!(decode_chunk(&bad, &index.chunks[0]).is_err());
        assert!(decode_chunk(&bad, &index.chunks[1]).is_ok());
    }

    #[test]
    fn unknown_footer_extension_is_rejected() {
        // Splice an unknown ext tag after a valid footer and re-frame.
        let image = draft().encode().expect("encode");
        let frame_at = image.len() - 8 - SEG_TAIL.len();
        let footer_len = u32::from_le_bytes([
            image[frame_at],
            image[frame_at + 1],
            image[frame_at + 2],
            image[frame_at + 3],
        ]) as usize;
        let footer_at = frame_at - footer_len;
        let mut footer = image[footer_at..frame_at].to_vec();
        codec::put_varint(&mut footer, 99);
        let mut spliced = image[..footer_at].to_vec();
        let crc = crc32(&footer);
        let len = footer.len() as u32;
        spliced.extend_from_slice(&footer);
        codec::put_u32(&mut spliced, len);
        codec::put_u32(&mut spliced, crc);
        spliced.extend_from_slice(SEG_TAIL);
        assert!(matches!(
            decode(&spliced),
            Err(SegmentError::Malformed("unknown footer extension"))
        ));
    }

    #[test]
    fn encoder_rejects_out_of_order_and_mismatched_columns() {
        let mut d = SegmentDraft::default();
        d.chunks.push(SegmentChunk {
            lane: 5,
            after_control_seq: 0,
            timestamps: vec![10, 10],
            values: vec![1.0, 2.0],
            late_dropped: 0,
            duplicates_dropped: 0,
        });
        assert_eq!(d.encode(), Err(SegmentError::NonMonotonic { lane: 5 }));

        d.chunks.clear();
        d.chunks.push(SegmentChunk {
            lane: 5,
            after_control_seq: 0,
            timestamps: vec![10],
            values: Vec::new(),
            late_dropped: 0,
            duplicates_dropped: 0,
        });
        assert!(matches!(d.encode(), Err(SegmentError::Malformed(_))));
    }
}
