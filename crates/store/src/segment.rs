//! Immutable columnar segment files sealed from the WAL on rotation.
//!
//! Layout:
//!
//! ```text
//! [magic "HSEG1\n"]
//! per chunk:  [ts column: varint ts0, varint deltas][u32 crc]
//!             [value column: raw LE f64 × count]    [u32 crc]
//! [footer: lane defs, control records, chunk index]
//! [u32 footer_len][u32 crc32(footer)][tail magic "HSEGF\n"]
//! ```
//!
//! Timestamps are delta-encoded varints (strictly increasing within a
//! chunk — the stream watermark guarantees it, the encoder enforces it);
//! values are raw IEEE-754 bits so NaN payloads round-trip exactly. The
//! footer indexes every chunk by lane with byte offsets, sample count,
//! min/max timestamps, and the per-lane late/duplicate counters frozen at
//! seal time. Unlike the WAL, a segment is all-or-nothing: it was written
//! and fsynced before its WAL was deleted, so *any* checksum or structure
//! failure is a hard error — there is no valid prefix to salvage.
//!
//! The decoder materialises columns straight into `Arc<[u64]>` /
//! `Arc<[f64]>` so `hierod-timeseries` views can share them zero-copy.

use std::fmt;
use std::sync::Arc;

use crate::codec;
use crate::crc::crc32;

/// File magic for segment files.
pub const SEG_MAGIC: &[u8; 6] = b"HSEG1\n";
/// Trailing magic; its presence proves the file was written to the end.
pub const SEG_TAIL: &[u8; 6] = b"HSEGF\n";

/// Why a segment failed to decode. Segments are immutable and fsynced
/// before their WAL is dropped, so every variant is unrecoverable
/// corruption of that file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentError {
    /// The file is shorter than its fixed framing.
    Truncated,
    /// Head or tail magic is wrong.
    BadMagic,
    /// A column or the footer does not match its checksum.
    ChecksumMismatch(&'static str),
    /// Structure is inconsistent (bad offsets, counts, varints).
    Malformed(&'static str),
    /// A timestamp column is not strictly increasing (also returned by
    /// the encoder when handed out-of-order input).
    NonMonotonic {
        /// The lane whose column is out of order.
        lane: u32,
    },
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Truncated => write!(f, "segment truncated"),
            SegmentError::BadMagic => write!(f, "segment magic mismatch"),
            SegmentError::ChecksumMismatch(what) => {
                write!(f, "segment checksum mismatch in {what}")
            }
            SegmentError::Malformed(what) => write!(f, "segment malformed: {what}"),
            SegmentError::NonMonotonic { lane } => {
                write!(f, "segment lane {lane}: timestamps not strictly increasing")
            }
        }
    }
}

impl std::error::Error for SegmentError {}

impl From<SegmentError> for std::io::Error {
    fn from(e: SegmentError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// A lane declaration carried into the segment footer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneDef {
    /// Store-local lane number.
    pub lane: u32,
    /// Opaque lane metadata (serialised `LaneId`).
    pub meta: Vec<u8>,
}

/// A control event carried into the segment footer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlRecord {
    /// Writer-assigned, strictly increasing sequence number.
    pub seq: u64,
    /// Opaque event body.
    pub payload: Vec<u8>,
}

/// One lane's sealed samples, plus the counters frozen at seal time.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentChunk {
    /// Lane declared in the footer's lane defs.
    pub lane: u32,
    /// Sequence number of the control event that opened this lane
    /// interval; recovery applies the chunk right after that control.
    pub after_control_seq: u64,
    /// Strictly increasing sample timestamps.
    pub timestamps: Vec<u64>,
    /// Sample values, same length as `timestamps`.
    pub values: Vec<f64>,
    /// Absolute late-drop counter for the lane at seal time.
    pub late_dropped: u64,
    /// Absolute duplicate-drop counter for the lane at seal time.
    pub duplicates_dropped: u64,
}

/// Everything that goes into one segment file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SegmentDraft {
    /// Lane declarations (superset of the lanes chunks reference).
    pub lane_defs: Vec<LaneDef>,
    /// Control events sealed into this segment, in sequence order.
    pub controls: Vec<ControlRecord>,
    /// Sealed sample chunks.
    pub chunks: Vec<SegmentChunk>,
}

/// One decoded chunk with shareable column storage.
#[derive(Debug, Clone)]
pub struct DecodedChunk {
    /// Lane number.
    pub lane: u32,
    /// Control sequence this chunk follows.
    pub after_control_seq: u64,
    /// Timestamp column, ready for zero-copy `TimeSeries` adoption.
    pub timestamps: Arc<[u64]>,
    /// Value column, ready for zero-copy `TimeSeries` adoption.
    pub values: Arc<[f64]>,
    /// Absolute late-drop counter at seal time.
    pub late_dropped: u64,
    /// Absolute duplicate-drop counter at seal time.
    pub duplicates_dropped: u64,
}

/// A fully verified, decoded segment.
#[derive(Debug, Clone, Default)]
pub struct SegmentData {
    /// Lane declarations.
    pub lane_defs: Vec<LaneDef>,
    /// Control events in sequence order.
    pub controls: Vec<ControlRecord>,
    /// Decoded chunks in file order.
    pub chunks: Vec<DecodedChunk>,
}

/// Index entry for one chunk (footer-internal).
struct ChunkEntry {
    lane: u32,
    after_control_seq: u64,
    count: u64,
    ts_off: u64,
    ts_len: u64,
    val_off: u64,
    val_len: u64,
    min_ts: u64,
    max_ts: u64,
    late_dropped: u64,
    duplicates_dropped: u64,
}

impl SegmentDraft {
    /// Serialises the draft into a complete segment file image.
    ///
    /// # Errors
    /// [`SegmentError::NonMonotonic`] if a chunk's timestamps are not
    /// strictly increasing, [`SegmentError::Malformed`] if a chunk's
    /// column lengths disagree.
    pub fn encode(&self) -> Result<Vec<u8>, SegmentError> {
        let mut out = Vec::with_capacity(64 + self.chunks.len() * 64);
        out.extend_from_slice(SEG_MAGIC);
        let mut entries = Vec::with_capacity(self.chunks.len());
        for chunk in &self.chunks {
            if chunk.timestamps.len() != chunk.values.len() {
                return Err(SegmentError::Malformed("column length mismatch"));
            }
            // Timestamp column: first value absolute, then strict deltas.
            let mut ts_col = Vec::with_capacity(chunk.timestamps.len() * 2);
            let mut prev: Option<u64> = None;
            for &t in &chunk.timestamps {
                match prev {
                    None => codec::put_varint(&mut ts_col, t),
                    Some(p) => {
                        if t <= p {
                            return Err(SegmentError::NonMonotonic { lane: chunk.lane });
                        }
                        codec::put_varint(&mut ts_col, t - p);
                    }
                }
                prev = Some(t);
            }
            let ts_off = out.len() as u64;
            out.extend_from_slice(&ts_col);
            codec::put_u32(&mut out, crc32(&ts_col));

            let mut val_col = Vec::with_capacity(chunk.values.len() * 8);
            for &v in &chunk.values {
                codec::put_f64(&mut val_col, v);
            }
            let val_off = out.len() as u64;
            out.extend_from_slice(&val_col);
            codec::put_u32(&mut out, crc32(&val_col));

            let min_ts = chunk.timestamps.first().copied().unwrap_or(0);
            let max_ts = chunk.timestamps.last().copied().unwrap_or(0);
            entries.push(ChunkEntry {
                lane: chunk.lane,
                after_control_seq: chunk.after_control_seq,
                count: chunk.timestamps.len() as u64,
                ts_off,
                ts_len: ts_col.len() as u64,
                val_off,
                val_len: val_col.len() as u64,
                min_ts,
                max_ts,
                late_dropped: chunk.late_dropped,
                duplicates_dropped: chunk.duplicates_dropped,
            });
        }

        let mut footer = Vec::new();
        codec::put_varint(&mut footer, self.lane_defs.len() as u64);
        for def in &self.lane_defs {
            codec::put_varint(&mut footer, u64::from(def.lane));
            codec::put_bytes(&mut footer, &def.meta);
        }
        codec::put_varint(&mut footer, self.controls.len() as u64);
        for control in &self.controls {
            codec::put_varint(&mut footer, control.seq);
            codec::put_bytes(&mut footer, &control.payload);
        }
        codec::put_varint(&mut footer, entries.len() as u64);
        for e in &entries {
            codec::put_varint(&mut footer, u64::from(e.lane));
            codec::put_varint(&mut footer, e.after_control_seq);
            codec::put_varint(&mut footer, e.count);
            codec::put_varint(&mut footer, e.ts_off);
            codec::put_varint(&mut footer, e.ts_len);
            codec::put_varint(&mut footer, e.val_off);
            codec::put_varint(&mut footer, e.val_len);
            codec::put_varint(&mut footer, e.min_ts);
            codec::put_varint(&mut footer, e.max_ts);
            codec::put_varint(&mut footer, e.late_dropped);
            codec::put_varint(&mut footer, e.duplicates_dropped);
        }

        let footer_crc = crc32(&footer);
        let footer_len = footer.len() as u32;
        out.extend_from_slice(&footer);
        codec::put_u32(&mut out, footer_len);
        codec::put_u32(&mut out, footer_crc);
        out.extend_from_slice(SEG_TAIL);
        Ok(out)
    }
}

/// Decodes and fully verifies a segment file image.
///
/// # Errors
/// Any framing, checksum, or structure violation — segments have no
/// salvageable prefix.
pub fn decode(bytes: &[u8]) -> Result<SegmentData, SegmentError> {
    let fixed = SEG_MAGIC.len() + 8 + SEG_TAIL.len();
    if bytes.len() < fixed {
        return Err(SegmentError::Truncated);
    }
    if !bytes.starts_with(SEG_MAGIC) || !bytes.ends_with(SEG_TAIL) {
        return Err(SegmentError::BadMagic);
    }
    let frame_at = bytes.len() - 8 - SEG_TAIL.len();
    let mut frame = bytes.get(frame_at..).unwrap_or(&[]);
    let footer_len = codec::take_u32(&mut frame).ok_or(SegmentError::Truncated)? as usize;
    let footer_crc = codec::take_u32(&mut frame).ok_or(SegmentError::Truncated)?;
    let footer_at = frame_at
        .checked_sub(footer_len)
        .ok_or(SegmentError::Malformed("footer length exceeds file"))?;
    if footer_at < SEG_MAGIC.len() {
        return Err(SegmentError::Malformed("footer overlaps header"));
    }
    let footer = bytes
        .get(footer_at..frame_at)
        .ok_or(SegmentError::Truncated)?;
    if crc32(footer) != footer_crc {
        return Err(SegmentError::ChecksumMismatch("footer"));
    }
    // The body region chunks may reference.
    let body_end = footer_at;

    let mut f = footer;
    let lane_def_count = codec::take_varint(&mut f).ok_or(SegmentError::Malformed("lane defs"))?;
    let mut lane_defs = Vec::new();
    for _ in 0..lane_def_count {
        let lane = codec::take_varint(&mut f)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or(SegmentError::Malformed("lane def id"))?;
        let meta = codec::take_bytes(&mut f)
            .ok_or(SegmentError::Malformed("lane def meta"))?
            .to_vec();
        lane_defs.push(LaneDef { lane, meta });
    }
    let control_count = codec::take_varint(&mut f).ok_or(SegmentError::Malformed("controls"))?;
    let mut controls = Vec::new();
    for _ in 0..control_count {
        let seq = codec::take_varint(&mut f).ok_or(SegmentError::Malformed("control seq"))?;
        let payload = codec::take_bytes(&mut f)
            .ok_or(SegmentError::Malformed("control payload"))?
            .to_vec();
        controls.push(ControlRecord { seq, payload });
    }
    let chunk_count = codec::take_varint(&mut f).ok_or(SegmentError::Malformed("chunk index"))?;
    let mut entries = Vec::new();
    for _ in 0..chunk_count {
        let mut next =
            |what: &'static str| codec::take_varint(&mut f).ok_or(SegmentError::Malformed(what));
        let lane_raw = next("chunk lane")?;
        entries.push(ChunkEntry {
            lane: u32::try_from(lane_raw).map_err(|_| SegmentError::Malformed("chunk lane"))?,
            after_control_seq: next("chunk seq")?,
            count: next("chunk count")?,
            ts_off: next("chunk ts off")?,
            ts_len: next("chunk ts len")?,
            val_off: next("chunk val off")?,
            val_len: next("chunk val len")?,
            min_ts: next("chunk min ts")?,
            max_ts: next("chunk max ts")?,
            late_dropped: next("chunk late")?,
            duplicates_dropped: next("chunk dups")?,
        });
    }
    if !f.is_empty() {
        return Err(SegmentError::Malformed("footer trailing bytes"));
    }

    let column = |off: u64, len: u64, what: &'static str| -> Result<&[u8], SegmentError> {
        let off = usize::try_from(off).map_err(|_| SegmentError::Malformed(what))?;
        let len = usize::try_from(len).map_err(|_| SegmentError::Malformed(what))?;
        let end = off.checked_add(len).ok_or(SegmentError::Malformed(what))?;
        // The +4 checksum trailer must also fit inside the body.
        let crc_end = end.checked_add(4).ok_or(SegmentError::Malformed(what))?;
        if off < SEG_MAGIC.len() || crc_end > body_end {
            return Err(SegmentError::Malformed(what));
        }
        let col = bytes.get(off..end).ok_or(SegmentError::Malformed(what))?;
        let mut crc_bytes = bytes
            .get(end..crc_end)
            .ok_or(SegmentError::Malformed(what))?;
        let expect = codec::take_u32(&mut crc_bytes).ok_or(SegmentError::Malformed(what))?;
        if crc32(col) != expect {
            return Err(SegmentError::ChecksumMismatch(what));
        }
        Ok(col)
    };

    let mut chunks = Vec::with_capacity(entries.len());
    for e in &entries {
        let count = usize::try_from(e.count).map_err(|_| SegmentError::Malformed("count"))?;
        let ts_col = column(e.ts_off, e.ts_len, "timestamp column")?;
        let val_col = column(e.val_off, e.val_len, "value column")?;

        // Each varint is at least one byte, so a valid column bounds the
        // count — reject early rather than trusting it for allocation.
        if count > ts_col.len() {
            return Err(SegmentError::Malformed("count exceeds ts column"));
        }
        let mut timestamps = Vec::with_capacity(count);
        let mut rest = ts_col;
        let mut prev: Option<u64> = None;
        for _ in 0..count {
            let raw =
                codec::take_varint(&mut rest).ok_or(SegmentError::Malformed("ts column short"))?;
            let t = match prev {
                None => raw,
                Some(p) => {
                    if raw == 0 {
                        return Err(SegmentError::NonMonotonic { lane: e.lane });
                    }
                    p.checked_add(raw)
                        .ok_or(SegmentError::Malformed("ts overflow"))?
                }
            };
            timestamps.push(t);
            prev = Some(t);
        }
        if !rest.is_empty() {
            return Err(SegmentError::Malformed("ts column trailing bytes"));
        }
        let min_ts = timestamps.first().copied().unwrap_or(0);
        let max_ts = timestamps.last().copied().unwrap_or(0);
        if min_ts != e.min_ts || max_ts != e.max_ts {
            return Err(SegmentError::Malformed("min/max timestamp mismatch"));
        }

        let val_bytes = count
            .checked_mul(8)
            .ok_or(SegmentError::Malformed("value column length"))?;
        if val_col.len() != val_bytes {
            return Err(SegmentError::Malformed("value column length"));
        }
        let mut values = Vec::with_capacity(count);
        let mut rest = val_col;
        while let Some(v) = codec::take_f64(&mut rest) {
            values.push(v);
        }
        if values.len() != count {
            return Err(SegmentError::Malformed("value column count"));
        }

        chunks.push(DecodedChunk {
            lane: e.lane,
            after_control_seq: e.after_control_seq,
            timestamps: timestamps.into(),
            values: values.into(),
            late_dropped: e.late_dropped,
            duplicates_dropped: e.duplicates_dropped,
        });
    }

    Ok(SegmentData {
        lane_defs,
        controls,
        chunks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draft() -> SegmentDraft {
        SegmentDraft {
            lane_defs: vec![
                LaneDef {
                    lane: 0,
                    meta: b"m0/bed_temp/phase".to_vec(),
                },
                LaneDef {
                    lane: 1,
                    meta: b"m0/room_temp/env".to_vec(),
                },
                LaneDef {
                    lane: 2,
                    meta: b"m1/vibration/phase".to_vec(),
                },
            ],
            controls: vec![
                ControlRecord {
                    seq: 1,
                    payload: b"machine_up m0".to_vec(),
                },
                ControlRecord {
                    seq: 2,
                    payload: b"job_start m0 j0".to_vec(),
                },
            ],
            chunks: vec![
                SegmentChunk {
                    lane: 0,
                    after_control_seq: 2,
                    timestamps: vec![100, 101, 105, 1_000_000],
                    values: vec![219.5, f64::NAN, -0.0, 1e300],
                    late_dropped: 3,
                    duplicates_dropped: 1,
                },
                SegmentChunk {
                    lane: 1,
                    after_control_seq: 1,
                    timestamps: vec![42],
                    values: vec![21.0],
                    late_dropped: 0,
                    duplicates_dropped: 0,
                },
                SegmentChunk {
                    lane: 2,
                    after_control_seq: 2,
                    timestamps: Vec::new(),
                    values: Vec::new(),
                    late_dropped: 0,
                    duplicates_dropped: 7,
                },
            ],
        }
    }

    #[test]
    fn round_trip_including_empty_and_single_sample_chunks() {
        let d = draft();
        let image = d.encode().expect("encode");
        let data = decode(&image).expect("decode");
        assert_eq!(data.lane_defs, d.lane_defs);
        assert_eq!(data.controls, d.controls);
        assert_eq!(data.chunks.len(), d.chunks.len());
        for (got, want) in data.chunks.iter().zip(&d.chunks) {
            assert_eq!(got.lane, want.lane);
            assert_eq!(got.after_control_seq, want.after_control_seq);
            assert_eq!(got.timestamps.as_ref(), want.timestamps.as_slice());
            let bits: Vec<u64> = got.values.iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u64> = want.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, want_bits, "values must round-trip bit-exactly");
            assert_eq!(got.late_dropped, want.late_dropped);
            assert_eq!(got.duplicates_dropped, want.duplicates_dropped);
        }
    }

    #[test]
    fn empty_segment_round_trips() {
        let image = SegmentDraft::default().encode().expect("encode");
        let data = decode(&image).expect("decode");
        assert!(data.lane_defs.is_empty());
        assert!(data.controls.is_empty());
        assert!(data.chunks.is_empty());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let image = draft().encode().expect("encode");
        for byte in 0..image.len() {
            for bit in 0..8 {
                let mut bad = image.clone();
                bad[byte] ^= 1_u8 << bit;
                assert!(
                    decode(&bad).is_err(),
                    "bit flip at {byte}:{bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let image = draft().encode().expect("encode");
        for cut in 0..image.len() {
            assert!(decode(&image[..cut]).is_err(), "truncation at {cut}");
        }
    }

    #[test]
    fn encoder_rejects_out_of_order_and_mismatched_columns() {
        let mut d = SegmentDraft::default();
        d.chunks.push(SegmentChunk {
            lane: 5,
            after_control_seq: 0,
            timestamps: vec![10, 10],
            values: vec![1.0, 2.0],
            late_dropped: 0,
            duplicates_dropped: 0,
        });
        assert_eq!(d.encode(), Err(SegmentError::NonMonotonic { lane: 5 }));

        d.chunks.clear();
        d.chunks.push(SegmentChunk {
            lane: 5,
            after_control_seq: 0,
            timestamps: vec![10],
            values: Vec::new(),
            late_dropped: 0,
            duplicates_dropped: 0,
        });
        assert!(matches!(d.encode(), Err(SegmentError::Malformed(_))));
    }
}
