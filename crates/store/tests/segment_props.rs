//! Property tests for the columnar segment codec, plus a byte-pinned
//! golden segment file.
//!
//! The round-trip property covers arbitrary lane counts and chunk
//! lengths — including empty and single-sample chunks, which exercise
//! the delta encoder's base cases — with values drawn from raw bit
//! patterns so NaNs and infinities must survive bit-exactly.
//!
//! The golden test decodes (and byte-compares) `tests/golden/golden.seg`
//! committed to the repository: any accidental format change breaks it
//! loudly instead of silently orphaning segments written by older
//! builds. Regenerate deliberately with
//! `REGEN_GOLDEN=1 cargo test -p hierod-store --test segment_props`.

use proptest::prelude::*;

use hierod_store::segment::{self, ControlRecord, LaneDef, SegmentChunk, SegmentDraft};

/// Builds strictly increasing timestamps from positive gaps.
fn cumsum(start: u64, gaps: &[u64]) -> Vec<u64> {
    let mut ts = Vec::with_capacity(gaps.len());
    let mut t = start;
    for &g in gaps {
        t = t.saturating_add(g.max(1));
        ts.push(t);
    }
    ts
}

fn draft_from(lanes: &[(Vec<u64>, Vec<u64>)], controls: &[Vec<u8>]) -> SegmentDraft {
    let mut draft = SegmentDraft::default();
    for (i, (gaps, bits)) in lanes.iter().enumerate() {
        let lane = i as u32;
        draft.lane_defs.push(LaneDef {
            lane,
            meta: format!("lane-{lane}").into_bytes(),
        });
        let timestamps = cumsum(lane as u64 * 7, gaps);
        let values: Vec<f64> = bits
            .iter()
            .take(timestamps.len())
            .map(|&b| f64::from_bits(b))
            .collect();
        let timestamps: Vec<u64> = timestamps.into_iter().take(values.len()).collect();
        draft.chunks.push(SegmentChunk {
            lane,
            after_control_seq: lane as u64 + 1,
            timestamps,
            values,
            late_dropped: lane as u64 * 3,
            duplicates_dropped: lane as u64,
        });
    }
    for (i, payload) in controls.iter().enumerate() {
        draft.controls.push(ControlRecord {
            seq: i as u64 + 1,
            payload: payload.clone(),
        });
    }
    draft
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity on lane defs, controls, and
    /// chunks (values compared bitwise, so NaN payloads count).
    #[test]
    fn draft_round_trips(
        lanes in prop::collection::vec(
            (
                prop::collection::vec(1_u64..10_000, 0..48),
                prop::collection::vec(any::<u64>(), 0..48),
            ),
            1..6,
        ),
        controls in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 0..6),
    ) {
        let draft = draft_from(&lanes, &controls);
        let bytes = draft.encode().expect("encode");
        let data = segment::decode(&bytes).expect("decode");

        prop_assert_eq!(data.lane_defs.len(), draft.lane_defs.len());
        for (got, want) in data.lane_defs.iter().zip(draft.lane_defs.iter()) {
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(data.controls.len(), draft.controls.len());
        for (got, want) in data.controls.iter().zip(draft.controls.iter()) {
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(data.chunks.len(), draft.chunks.len());
        for (got, want) in data.chunks.iter().zip(draft.chunks.iter()) {
            prop_assert_eq!(got.lane, want.lane);
            prop_assert_eq!(got.after_control_seq, want.after_control_seq);
            prop_assert_eq!(got.late_dropped, want.late_dropped);
            prop_assert_eq!(got.duplicates_dropped, want.duplicates_dropped);
            prop_assert_eq!(got.timestamps.as_ref(), want.timestamps.as_slice());
            let got_bits: Vec<u64> = got.values.iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u64> = want.values.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got_bits, want_bits);
        }
    }

    /// Re-encoding the decoded draft reproduces the input bytes: the
    /// format has one canonical serialisation.
    #[test]
    fn encoding_is_canonical(
        lanes in prop::collection::vec(
            (
                prop::collection::vec(1_u64..500, 0..16),
                prop::collection::vec(any::<u64>(), 0..16),
            ),
            1..4,
        ),
    ) {
        let draft = draft_from(&lanes, &[]);
        let bytes = draft.encode().expect("encode");
        let data = segment::decode(&bytes).expect("decode");
        let rebuilt = SegmentDraft {
            lane_defs: data.lane_defs.clone(),
            controls: data.controls.clone(),
            chunks: data
                .chunks
                .iter()
                .map(|c| SegmentChunk {
                    lane: c.lane,
                    after_control_seq: c.after_control_seq,
                    timestamps: c.timestamps.to_vec(),
                    values: c.values.to_vec(),
                    late_dropped: c.late_dropped,
                    duplicates_dropped: c.duplicates_dropped,
                })
                .collect(),
            extra: data.extra.clone(),
        };
        prop_assert_eq!(rebuilt.encode().expect("re-encode"), bytes);
    }

    /// The Gorilla encoding and the PR 5 raw-LE encoding decode to the
    /// same data: compacted history files and rotation segments are
    /// interchangeable to every reader. Values are raw bit patterns, so
    /// NaN payloads, ±0.0, subnormals, and infinities are all drawn.
    #[test]
    fn gorilla_cross_decodes_with_raw(
        lanes in prop::collection::vec(
            (
                prop::collection::vec(1_u64..10_000, 0..48),
                prop::collection::vec(any::<u64>(), 0..48),
            ),
            1..6,
        ),
        extra in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let mut draft = draft_from(&lanes, &[]);
        draft.extra = extra;
        let raw = draft.encode().expect("raw encode");
        let packed = draft
            .encode_as(segment::ColumnEncoding::Gorilla)
            .expect("gorilla encode");
        let a = segment::decode(&raw).expect("raw decode");
        let b = segment::decode(&packed).expect("gorilla decode");
        prop_assert_eq!(&a.extra, &b.extra);
        prop_assert_eq!(a.chunks.len(), b.chunks.len());
        for (x, y) in a.chunks.iter().zip(b.chunks.iter()) {
            prop_assert_eq!(x.lane, y.lane);
            prop_assert_eq!(x.after_control_seq, y.after_control_seq);
            prop_assert_eq!(x.timestamps.as_ref(), y.timestamps.as_ref());
            let xb: Vec<u64> = x.values.iter().map(|v| v.to_bits()).collect();
            let yb: Vec<u64> = y.values.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(xb, yb);
            prop_assert_eq!(x.late_dropped, y.late_dropped);
            prop_assert_eq!(x.duplicates_dropped, y.duplicates_dropped);
        }
    }
}

/// The draft behind the committed golden file — do not change casually:
/// altering it (or the format) invalidates segments on disk.
fn golden_draft() -> SegmentDraft {
    SegmentDraft {
        lane_defs: vec![
            LaneDef {
                lane: 0,
                meta: b"\x00\x02m0\x08m0.bed.0".to_vec(),
            },
            LaneDef {
                lane: 1,
                meta: b"\x01\x02m0\x07m0.room".to_vec(),
            },
        ],
        controls: vec![
            ControlRecord {
                seq: 1,
                payload: b"machine-up".to_vec(),
            },
            ControlRecord {
                seq: 2,
                payload: b"job-start".to_vec(),
            },
        ],
        chunks: vec![
            SegmentChunk {
                lane: 0,
                after_control_seq: 2,
                timestamps: vec![3, 4, 9, 1000, 1001],
                values: vec![1.5, -2.25, f64::NAN, f64::INFINITY, 0.0],
                late_dropped: 2,
                duplicates_dropped: 1,
            },
            SegmentChunk {
                lane: 1,
                after_control_seq: 1,
                timestamps: vec![42],
                values: vec![-0.0],
                late_dropped: 0,
                duplicates_dropped: 0,
            },
            SegmentChunk {
                lane: 1,
                after_control_seq: 1,
                timestamps: vec![],
                values: vec![],
                late_dropped: 7,
                duplicates_dropped: 0,
            },
        ],
        extra: Vec::new(),
    }
}

#[test]
fn golden_segment_is_byte_stable() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/golden.seg");
    let bytes = golden_draft().encode().expect("encode golden draft");
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, &bytes).expect("write golden");
    }
    let pinned =
        std::fs::read(&path).expect("read tests/golden/golden.seg (REGEN_GOLDEN=1 to create)");
    assert_eq!(
        bytes, pinned,
        "segment encoding changed — this breaks segments written by older builds"
    );

    // The pinned bytes must also decode back to the draft.
    let data = segment::decode(&pinned).expect("decode golden");
    let want = golden_draft();
    assert_eq!(data.lane_defs, want.lane_defs);
    assert_eq!(data.controls, want.controls);
    assert_eq!(data.chunks.len(), want.chunks.len());
    for (got, want) in data.chunks.iter().zip(want.chunks.iter()) {
        assert_eq!(got.timestamps.as_ref(), want.timestamps.as_slice());
        let got_bits: Vec<u64> = got.values.iter().map(|v| v.to_bits()).collect();
        let want_bits: Vec<u64> = want.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got_bits, want_bits);
        assert_eq!(got.late_dropped, want.late_dropped);
        assert_eq!(got.duplicates_dropped, want.duplicates_dropped);
    }
}

/// The draft behind the committed *compressed* golden file: the golden
/// draft re-encoded with Gorilla columns and a history-style `extra`
/// section, as the compactor writes it.
fn golden_hist_draft() -> SegmentDraft {
    let mut draft = golden_draft();
    draft.extra = vec![1, 1]; // history level tag: level 1
    draft
}

#[test]
fn golden_compressed_segment_is_byte_stable() {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/golden_hist.seg");
    let bytes = golden_hist_draft()
        .encode_as(segment::ColumnEncoding::Gorilla)
        .expect("encode compressed golden");
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, &bytes).expect("write golden");
    }
    let pinned =
        std::fs::read(&path).expect("read tests/golden/golden_hist.seg (REGEN_GOLDEN=1 to create)");
    assert_eq!(
        bytes, pinned,
        "compressed segment encoding changed — this breaks history files written by older builds"
    );

    // The pinned compressed bytes decode to exactly what the raw golden
    // decodes to (plus the extra section): the formats cross-decode.
    let data = segment::decode(&pinned).expect("decode compressed golden");
    let want = golden_hist_draft();
    assert_eq!(data.extra, want.extra);
    assert_eq!(data.lane_defs, want.lane_defs);
    assert_eq!(data.controls, want.controls);
    assert_eq!(data.chunks.len(), want.chunks.len());
    for (got, want) in data.chunks.iter().zip(want.chunks.iter()) {
        assert_eq!(got.timestamps.as_ref(), want.timestamps.as_slice());
        let got_bits: Vec<u64> = got.values.iter().map(|v| v.to_bits()).collect();
        let want_bits: Vec<u64> = want.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got_bits, want_bits);
    }
    let index = segment::decode_index(&pinned).expect("index");
    assert!(index
        .chunks
        .iter()
        .all(|c| c.encoding == segment::ColumnEncoding::Gorilla));
}
