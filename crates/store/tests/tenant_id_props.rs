//! Property tests pinning the tenant-id grammar.
//!
//! Tenant ids become storage directory names and — since the network
//! front-end — arrive over the wire from untrusted clients, so the
//! grammar in [`valid_tenant_id`] is security-relevant: any accepted id
//! must be safe to join onto a storage root. These properties pin the
//! grammar from both sides: everything the positive generator builds is
//! accepted, and every path-traversal shape is rejected no matter how
//! it is embedded.

use proptest::prelude::*;

use hierod_store::tenants::{valid_tenant_id, MAX_TENANT_ID_LEN};

/// Segment alphabet: everything a segment may contain. `-` is legal
/// inside an id as long as it is not the very first byte.
const SEGMENT_CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_-";

/// The exact character set the grammar admits.
fn id_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-')
}

/// Reference implementation of the documented grammar, written
/// independently of the production code path.
fn reference_valid(id: &str) -> bool {
    let bytes = id.as_bytes();
    (1..=MAX_TENANT_ID_LEN).contains(&bytes.len())
        && bytes.first() != Some(&b'-')
        && bytes.iter().all(|&b| id_char(b))
        && id.split('.').all(|seg| !seg.is_empty())
}

fn segment_from(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| SEGMENT_CHARS[i % SEGMENT_CHARS.len()] as char)
        .collect()
}

/// A generator for ids the grammar must accept: 1–4 non-empty segments
/// of the segment alphabet joined by single dots, first byte forced
/// alphanumeric, capped at the length limit.
fn well_formed_id() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::collection::vec(0_usize..SEGMENT_CHARS.len(), 1..15),
        1..4,
    )
    .prop_map(|segments| {
        let mut id = segments
            .iter()
            .map(|seg| segment_from(seg))
            .collect::<Vec<_>>()
            .join(".");
        // `-` may not lead; force the first byte alphanumeric instead.
        if id.starts_with('-') {
            id.replace_range(0..1, "x");
        }
        id.truncate(MAX_TENANT_ID_LEN);
        // Truncation can strand a trailing dot; drop it.
        while id.ends_with('.') {
            id.pop();
        }
        id
    })
}

/// Arbitrary printable-and-control ASCII soup a hostile client could
/// send (NUL, separators, quotes, dots — everything).
fn ascii_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(0_u8..128, 0..80)
        .prop_map(|bytes| bytes.into_iter().map(|b| b as char).collect())
}

/// Short alphanumeric stems for embedding tests.
fn stem() -> impl Strategy<Value = String> {
    prop::collection::vec(0_usize..62, 0..10).prop_map(|idx| {
        idx.iter()
            .map(|&i| SEGMENT_CHARS[i % 62] as char) // first 62 = alphanumeric
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Everything the positive generator produces is accepted.
    #[test]
    fn well_formed_ids_accepted(id in well_formed_id()) {
        prop_assert!(valid_tenant_id(&id), "rejected well-formed id {:?}", id);
    }

    /// The production grammar and the independent reference agree on
    /// arbitrary ASCII inputs.
    #[test]
    fn grammar_matches_reference(id in ascii_soup()) {
        prop_assert_eq!(valid_tenant_id(&id), reference_valid(&id));
    }

    /// No accepted id contains a path-traversal or hidden-file shape:
    /// embedding `..` anywhere, or a leading/trailing dot, is rejected
    /// regardless of the surrounding characters.
    #[test]
    fn traversal_shapes_rejected(prefix in stem(), suffix in stem()) {
        let embedded = format!("{prefix}..{suffix}");
        prop_assert!(!valid_tenant_id(&embedded), "accepted {:?}", embedded);
        prop_assert!(!valid_tenant_id(&format!(".{suffix}")));
        prop_assert!(!valid_tenant_id(&format!("{prefix}.")));
    }

    /// Separators and parent-directory escapes never survive, even when
    /// the rest of the id is pristine.
    #[test]
    fn separators_rejected(s in stem(), pick in 0_usize..6) {
        let seps = ["/", "\\", "\0", "/..", "\\..", "/etc"];
        let sep = seps[pick % seps.len()];
        prop_assert!(!valid_tenant_id(&format!("{s}{sep}")));
        prop_assert!(!valid_tenant_id(&format!("{sep}{s}")));
    }
}

#[test]
fn grammar_examples_pinned() {
    for good in ["plant-a", "a", "p1.site2", "x_y-z.0", "A.B.C"] {
        assert!(valid_tenant_id(good), "should accept {good:?}");
    }
    for bad in [
        "",
        ".",
        "..",
        "...",
        "../evil",
        ".hidden",
        "trailing.",
        "a..b",
        "-flag",
        "a/b",
        "a\\b",
        "a b",
        "a\0b",
        &"x".repeat(MAX_TENANT_ID_LEN + 1),
    ] {
        assert!(!valid_tenant_id(bad), "should reject {bad:?}");
    }
    assert!(valid_tenant_id(&"x".repeat(MAX_TENANT_ID_LEN)));
}
