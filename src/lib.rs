//! # hierod — Hierarchical Outlier Detection for Industrial Production Settings
//!
//! Facade crate re-exporting the full `hierod` workspace: a reproduction of
//! Hoppenstedt et al., *Towards a Hierarchical Approach for Outlier Detection
//! in Industrial Production Settings* (EDBT 2019 workshops).
//!
//! * [`timeseries`] — series containers, statistics, distances, SAX, FFT,
//!   histograms.
//! * [`olap`] — minimal OLAP cube substrate.
//! * [`detect`] — one working detector per row of the paper's Table 1.
//! * [`hierarchy`] — the five-level production data model of the paper's
//!   Fig. 2.
//! * [`synth`] — additive-manufacturing workload generator with Fig.-1
//!   anomaly injection and ground truth.
//! * [`eval`] — evaluation metrics.
//! * [`corpus`] — bibliographic corpus substrate used to regenerate Fig. 3.
//! * [`core`] — Algorithm 1: `FindHierarchicalOutlier` with the
//!   ⟨global score, outlierness, support⟩ triple.
//! * [`stream`] — streaming ingestion and online hierarchical detection:
//!   SPSC ring lanes, per-sensor watermarks, incremental scorers, and a
//!   batch-equivalent streaming driver for Algorithm 1.
//! * [`store`] — durable substrate for the stream: CRC-checksummed
//!   write-ahead log, immutable columnar segments, crash recovery, and a
//!   deterministic fault-injection harness.
//! * [`history`] — the historical query tier over the store's sealed
//!   segments: tiered compaction into Gorilla-compressed history files,
//!   pruned time-range scans, and backfill re-detection over stored ranges.
//! * [`service`] — the service layer of the api → service → engine split:
//!   [`PlantService`](hierod_service::PlantService), the one plant-driving
//!   entry point shared by the embedded and network paths.
//! * [`wire`] — length-prefixed binary wire protocol; ingest frames are
//!   WAL records verbatim, so a captured stream replays through the store.
//! * [`server`] — std-only TCP front-end serving a `PlantService` to
//!   concurrent clients, with bounded accept queue and graceful drain.
//! * [`adapt`] — adaptive detection: residual drift monitors
//!   (Page–Hinkley, ADWIN-style), store-driven scorer refits at tick
//!   boundaries, and cross-sensor fusion for Algorithm 1's support term.

pub use hierod_adapt as adapt;
pub use hierod_core as core;
pub use hierod_corpus as corpus;
pub use hierod_detect as detect;
pub use hierod_eval as eval;
pub use hierod_hierarchy as hierarchy;
pub use hierod_history as history;
pub use hierod_olap as olap;
pub use hierod_server as server;
pub use hierod_service as service;
pub use hierod_store as store;
pub use hierod_stream as stream;
pub use hierod_synth as synth;
pub use hierod_timeseries as timeseries;
pub use hierod_wire as wire;
